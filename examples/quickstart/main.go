// Quickstart: build a FLAT index over a handful of boxes and run range,
// count and point queries, printing the page-read statistics that are
// FLAT's cost model.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"flat"
)

func main() {
	// A deterministic toy data set: 10,000 small boxes in a 100³ world.
	r := rand.New(rand.NewSource(42))
	els := make([]flat.Element, 10000)
	for i := range els {
		center := flat.V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		els[i] = flat.Element{
			ID:  uint64(i),
			Box: flat.CubeAt(center, 0.5+r.Float64()),
		}
	}

	// Build. FLAT is bulkloaded: the whole data set is indexed at once
	// (the paper's brain models change rarely and in batches).
	ix, err := flat.Build(els, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	fmt.Println(ix)

	// A range query returns every element whose bounding box intersects
	// the query box, plus the cost of answering it in 4 KiB page reads.
	q := flat.Box(flat.V(20, 20, 20), flat.V(35, 30, 28))
	hits, stats, err := ix.RangeQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query %v:\n  %d elements\n", q, len(hits))
	fmt.Printf("  %d page reads: %d seed + %d metadata + %d object\n",
		stats.TotalReads, stats.SeedReads, stats.MetadataReads, stats.ObjectReads)

	// CountQuery has the same I/O pattern without materializing results.
	ix.DropCache() // start cold again, like the paper's methodology
	n, stats2, err := ix.CountQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count query: %d elements, %d page reads\n", n, stats2.TotalReads)

	// Point queries are degenerate range queries.
	p := els[7].Box.Center()
	at, _, err := ix.PointQuery(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point query at %v: %d elements\n", p, len(at))

	// Query sessions stream results instead of materializing them: the
	// crawl reads pages only as the loop consumes elements, a context
	// cancels it mid-flight, and WithLimit stops it early — here the
	// first 5 elements cost a fraction of the full query's page reads.
	ix.DropCache()
	session := ix.Query(context.Background(), q, flat.WithLimit(5))
	for el, err := range session.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  streamed element %d %v\n", el.ID, el.Box)
	}
	fmt.Printf("limited session: %d page reads (full query cost %d)\n",
		session.Stats().TotalReads, stats.TotalReads)

	// Scaling out: the same data split into 4 spatial shards, built in
	// parallel and queried scatter-gather. Index and ShardedIndex both
	// satisfy flat.Querier, so query code is written once.
	sx, err := flat.BuildSharded(els, &flat.ShardedOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer sx.Close()
	fmt.Println(sx)
	for _, qr := range []flat.Querier{ix, sx} {
		n, st, err := qr.CountQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %T: %d elements, %d page reads\n", qr, n, st.TotalReads)
	}
}
