package flat

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func idsOf(els []Element) []uint64 {
	ids := make([]uint64, len(els))
	for i, e := range els {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchesUnsharded checks every K against the unsharded
// index on identical data, through the shared Querier contract.
func TestShardedMatchesUnsharded(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	els := randomElements(r, 5000)
	orig := append([]Element(nil), els...)
	queries := queryWorkload(r, 30)

	base, err := Build(append([]Element(nil), orig...), &Options{PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	for _, k := range []int{1, 2, 4, 8} {
		sx, err := BuildSharded(append([]Element(nil), orig...), &ShardedOptions{Shards: k, PageCapacity: 16})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if sx.NumShards() != k || sx.Len() != len(orig) {
			t.Fatalf("k=%d: %d shards, %d elements", k, sx.NumShards(), sx.Len())
		}
		var q Querier = sx // both indexes serve through the same contract
		for i, box := range queries {
			want, wantStats, err := base.RangeQuery(box)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := q.RangeQuery(box)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(idsOf(got), idsOf(want)) {
				t.Fatalf("k=%d query %d: %d results, want %d", k, i, len(got), len(want))
			}
			checkStats(t, gotStats, len(got))
			if k == 1 {
				// K=1 must be indistinguishable: same order, same reads.
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("k=1 query %d: order diverges at %d", i, j)
					}
				}
				_ = wantStats // cold-read parity is asserted below
			}
			n, _, err := q.CountQuery(box)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(want) {
				t.Errorf("k=%d query %d: count %d, want %d", k, i, n, len(want))
			}
		}
		sx.Close()
	}
}

// TestShardedColdReadParityK1 is the acceptance criterion's read-count
// half: a 1-shard index serves every query with exactly the page reads
// of the unsharded index.
func TestShardedColdReadParityK1(t *testing.T) {
	// The fanout=8 case keeps Options.SeedFanout and
	// ShardedOptions.SeedFanout honest: a smaller fanout deepens the
	// seed tree, so a knob dropped on either path shows up as a
	// read-count mismatch. The v2 case extends the invariant to the
	// compressed page format: a 1-shard v2 index reads exactly the pages
	// the unsharded v2 index does.
	cases := []struct {
		name   string
		fanout int
		format PageFormat
	}{
		{"fanout=0", 0, 0},
		{"fanout=8", 8, 0},
		{"fanout=8/v2", 8, PageFormatV2},
	}
	for _, tc := range cases {
		fanout, format := tc.fanout, tc.format
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(91))
			els := randomElements(r, 4000)
			orig := append([]Element(nil), els...)
			queries := queryWorkload(r, 25)

			base, err := Build(append([]Element(nil), orig...), &Options{PageCapacity: 16, SeedFanout: fanout, PageFormat: format})
			if err != nil {
				t.Fatal(err)
			}
			defer base.Close()
			sx, err := BuildSharded(append([]Element(nil), orig...), &ShardedOptions{Shards: 1, PageCapacity: 16, SeedFanout: fanout, PageFormat: format})
			if err != nil {
				t.Fatal(err)
			}
			defer sx.Close()

			if format != 0 && sx.ShardPageFormat(0) != format {
				t.Fatalf("sharded shard 0 format %v, want %v — knob not plumbed?", sx.ShardPageFormat(0), format)
			}
			if fanout != 0 && base.SeedHeight() < 3 {
				t.Fatalf("fanout %d did not deepen the seed tree (height %d) — knob not plumbed?", fanout, base.SeedHeight())
			}
			for i, q := range queries {
				if err := base.DropCache(); err != nil {
					t.Fatal(err)
				}
				if err := sx.DropCache(); err != nil {
					t.Fatal(err)
				}
				_, wantStats, err := base.RangeQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				_, gotStats, err := sx.RangeQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				if gotStats != wantStats {
					t.Errorf("query %d: sharded K=1 stats %+v, unsharded %+v", i, gotStats, wantStats)
				}
			}
		})
	}
}

func TestShardedDiskBacked(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	els := randomElements(r, 3000)
	orig := append([]Element(nil), els...)
	dir := filepath.Join(t.TempDir(), "sharded-index")
	queries := queryWorkload(r, 15)

	sx, err := BuildSharded(els, &ShardedOptions{Shards: 4, PageCapacity: 16, Dir: dir, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]uint64, len(queries))
	for i, q := range queries {
		res, _, err := sx.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = idsOf(res)
	}
	if err := sx.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenShardedWithOptions(dir, &ShardedOptions{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 4 || re.Len() != len(orig) {
		t.Fatalf("reopened: %d shards, %d elements", re.NumShards(), re.Len())
	}
	for i, q := range queries {
		res, st, err := re.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(res), want[i]) {
			t.Fatalf("query %d: reopened results differ", i)
		}
		checkStats(t, st, len(res))
	}
	// Point queries route through the same scatter path.
	pt, _, err := re.PointQuery(orig[11].Box.Center())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range pt {
		found = found || e.ID == 11
	}
	if !found {
		t.Error("PointQuery missed the element at its own center")
	}

	if _, err := OpenSharded(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("OpenSharded of missing dir should fail")
	}
}

func TestShardedBatchQueries(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	els := randomElements(r, 4000)
	orig := append([]Element(nil), els...)
	sx, err := BuildSharded(els, &ShardedOptions{Shards: 4, PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	queries := queryWorkload(r, 30)

	results, err := sx.BatchRangeQuery(queries, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts, stats, err := sx.BatchCountQuery(queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := apiBrute(orig, q)
		if !sameIDs(idsOf(results[i].Elements), want) {
			t.Errorf("query %d: batch range mismatch", i)
		}
		if counts[i] != len(want) {
			t.Errorf("query %d: batch count %d, want %d", i, counts[i], len(want))
		}
		checkStats(t, results[i].Stats, len(results[i].Elements))
		checkStats(t, stats[i], counts[i])
	}
}

func TestShardedConcurrentQueries(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	els := randomElements(r, 5000)
	sx, err := BuildSharded(els, &ShardedOptions{Shards: 4, PageCapacity: 16, BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	runConcurrencyCheck(t, sx, queryWorkload(r, 20))
}
