package flat

import (
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// queryWorkload returns a mix of selective and broad boxes over the
// random-element cube used by the API tests.
func queryWorkload(r *rand.Rand, n int) []MBR {
	qs := make([]MBR, n)
	for i := range qs {
		c := V(r.Float64()*100, r.Float64()*100, r.Float64()*100)
		side := 2 + r.Float64()*18
		qs[i] = CubeAt(c, side)
	}
	return qs
}

// checkStats asserts the self-consistency every QueryStats must keep
// even when other queries run concurrently: the total is the sum of the
// per-category reads this query itself caused, and the result count
// matches the materialized elements.
func checkStats(t *testing.T, st QueryStats, nResults int) {
	t.Helper()
	if st.Results != nResults {
		t.Errorf("stats.Results = %d, want %d", st.Results, nResults)
	}
	if sum := st.SeedReads + st.MetadataReads + st.ObjectReads; st.TotalReads != sum {
		t.Errorf("stats.TotalReads = %d, want seed+meta+object = %d", st.TotalReads, sum)
	}
}

// runConcurrencyCheck executes the workload on goroutines*rounds
// concurrent queries against ix (any Querier: plain or sharded) and
// verifies every result set matches the single-threaded baseline and
// every QueryStats is self-consistent. Run it under -race to also
// certify the page cache.
func runConcurrencyCheck(t *testing.T, ix Querier, queries []MBR) {
	t.Helper()

	// Single-threaded baseline, and a sanity check against brute force
	// over a fresh scan of the index itself.
	baseline := make([][]uint64, len(queries))
	for i, q := range queries {
		els, st, err := ix.RangeQuery(q)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		checkStats(t, st, len(els))
		ids := make([]uint64, len(els))
		for j, e := range els {
			ids[j] = e.ID
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		baseline[i] = ids
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i, q := range queries {
					// Alternate between the two query methods so both
					// concurrent paths are exercised.
					if (g+round+i)%2 == 0 {
						els, st, err := ix.RangeQuery(q)
						if err != nil {
							errc <- err
							return
						}
						checkStats(t, st, len(els))
						ids := make([]uint64, len(els))
						for j, e := range els {
							ids[j] = e.ID
						}
						sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
						if len(ids) != len(baseline[i]) {
							t.Errorf("goroutine %d query %d: %d results, baseline %d", g, i, len(ids), len(baseline[i]))
							return
						}
						for j := range ids {
							if ids[j] != baseline[i][j] {
								t.Errorf("goroutine %d query %d: result %d = id %d, baseline %d", g, i, j, ids[j], baseline[i][j])
								return
							}
						}
					} else {
						n, st, err := ix.CountQuery(q)
						if err != nil {
							errc <- err
							return
						}
						checkStats(t, st, n)
						if n != len(baseline[i]) {
							t.Errorf("goroutine %d query %d: count %d, baseline %d", g, i, n, len(baseline[i]))
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestConcurrentQueriesMemory(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	els := randomElements(r, 6000)
	ix, err := Build(els, &Options{PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	runConcurrencyCheck(t, ix, queryWorkload(r, 25))
}

func TestConcurrentQueriesDisk(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	els := randomElements(r, 6000)
	path := filepath.Join(t.TempDir(), "flat.idx")
	built, err := Build(els, &Options{PageCapacity: 16, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with a bounded cache: concurrent queries now also contend
	// on eviction, the harder case for the sharded pool.
	ix, err := OpenWithOptions(path, &Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	runConcurrencyCheck(t, ix, queryWorkload(r, 25))
}

func TestOpenWithOptionsZeroEqualsOpen(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	els := randomElements(r, 1500)
	path := filepath.Join(t.TempDir(), "flat.idx")
	built, err := Build(els, &Options{PageCapacity: 16, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	built.Close()

	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenWithOptions(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	q := CubeAt(V(50, 50, 50), 30)
	na, sa, err := a.CountQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	nb, sb, err := b.CountQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || sa.TotalReads != sb.TotalReads {
		t.Errorf("Open (%d results, %d reads) != OpenWithOptions(nil) (%d results, %d reads)",
			na, sa.TotalReads, nb, sb.TotalReads)
	}
}

func TestBatchRangeQuery(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	els := randomElements(r, 5000)
	ix, err := Build(els, &Options{PageCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	queries := queryWorkload(r, 40)

	for _, workers := range []int{0, 1, 3, 8, 100} {
		results, err := ix.BatchRangeQuery(queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(queries) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(queries))
		}
		for i, q := range queries {
			want, _, err := ix.RangeQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			got := results[i]
			checkStats(t, got.Stats, len(got.Elements))
			if len(got.Elements) != len(want) {
				t.Errorf("workers=%d query %d: %d elements, want %d", workers, i, len(got.Elements), len(want))
				continue
			}
			sortByID := func(e []Element) {
				sort.Slice(e, func(a, b int) bool { return e[a].ID < e[b].ID })
			}
			sortByID(got.Elements)
			sortByID(want)
			for j := range want {
				if got.Elements[j].ID != want[j].ID {
					t.Errorf("workers=%d query %d element %d: id %d, want %d", workers, i, j, got.Elements[j].ID, want[j].ID)
					break
				}
			}
		}
	}

	// The count variant must agree with the range variant.
	counts, stats, err := ix.BatchCountQuery(queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(queries) || len(stats) != len(queries) {
		t.Fatalf("BatchCountQuery returned %d counts, %d stats", len(counts), len(stats))
	}
	for i, q := range queries {
		n, _, err := ix.CountQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != n {
			t.Errorf("query %d: batch count %d, direct count %d", i, counts[i], n)
		}
		checkStats(t, stats[i], counts[i])
	}
}

func TestBatchRangeQueryEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	ix, err := Build(randomElements(r, 200), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	results, err := ix.BatchRangeQuery(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("empty batch returned %d results", len(results))
	}
}
