package flat

import (
	"flat/internal/geom"
	"flat/internal/rtree"
	"flat/internal/storage"
)

// RTreeStrategy selects the bulkloading algorithm for a baseline R-tree.
type RTreeStrategy int

// The three bulkloaded R-tree variants the paper evaluates against FLAT.
const (
	// RTreeSTR packs with Sort-Tile-Recursive (Leutenegger et al.).
	RTreeSTR RTreeStrategy = RTreeStrategy(rtree.STR)
	// RTreeHilbert packs in 3D-Hilbert-curve order (Kamel & Faloutsos).
	RTreeHilbert RTreeStrategy = RTreeStrategy(rtree.Hilbert)
	// RTreePR builds a Priority R-tree (Arge et al.).
	RTreePR RTreeStrategy = RTreeStrategy(rtree.PR)
)

// String returns the conventional name of the strategy.
func (s RTreeStrategy) String() string { return rtree.Strategy(s).String() }

// RTree is a bulkloaded baseline R-tree. It is exposed so downstream
// users can reproduce the paper's comparisons on their own data; for
// dense data FLAT (Index) is the recommended structure.
type RTree struct {
	inner *rtree.Tree
	pool  *storage.BufferPool
	pager storage.Pager
}

// RTreeStats reports the page reads of R-tree queries, split by
// node kind — the paper's leaf vs non-leaf overhead analysis.
type RTreeStats struct {
	InternalReads uint64
	LeafReads     uint64
}

// BuildRTree bulkloads a baseline R-tree over els (reordered in place)
// with the given strategy. Options semantics match Build; PageCapacity
// caps leaf entries.
func BuildRTree(els []Element, strategy RTreeStrategy, opts *Options) (*RTree, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	var pager storage.Pager
	if o.Path != "" {
		fp, err := storage.CreateFilePager(o.Path)
		if err != nil {
			return nil, err
		}
		pager = fp
	} else {
		pager = storage.NewMemPager()
	}
	pool := storage.NewBufferPool(pager, o.BufferPages)
	world := o.World
	if world.Empty() || world == (MBR{}) {
		world = geom.ElementsMBR(els)
	}
	tree, err := rtree.Build(pool, els, rtree.Strategy(strategy), world, rtree.Config{
		LeafCapacity: o.PageCapacity,
	})
	if err != nil {
		pager.Close()
		return nil, err
	}
	// Hand back a cold tree; see Build.
	pool.Reset()
	return &RTree{inner: tree, pool: pool, pager: pager}, nil
}

// RangeQuery returns all elements intersecting q and the page reads the
// traversal performed.
func (t *RTree) RangeQuery(q MBR) ([]Element, RTreeStats, error) {
	before := t.pool.Stats()
	res, err := t.inner.RangeQuery(q)
	delta := t.pool.Stats().Sub(before)
	return res, RTreeStats{
		InternalReads: delta.Reads[storage.CatRTreeInternal],
		LeafReads:     delta.Reads[storage.CatRTreeLeaf],
	}, err
}

// PointQuery returns all elements whose MBR contains p.
func (t *RTree) PointQuery(p Vec3) ([]Element, RTreeStats, error) {
	return t.RangeQuery(geom.PointBox(p))
}

// Len returns the number of indexed elements.
func (t *RTree) Len() int { return t.inner.Len() }

// Height returns the tree height in levels.
func (t *RTree) Height() int { return t.inner.Height() }

// SizeBytes returns the on-disk footprint.
func (t *RTree) SizeBytes() uint64 { return t.inner.SizeBytes() }

// DropCache empties the page cache so the next query starts cold.
func (t *RTree) DropCache() { t.pool.DropFrames() }

// Close releases the tree's storage.
func (t *RTree) Close() error { return t.pager.Close() }
