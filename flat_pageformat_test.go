package flat

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// TestPageFormatV2PublicRoundTrip drives page format v2 and the mmap
// open path through the public API: build to disk under v2, reopen both
// through file reads and a memory mapping, and require identical
// results and read counts from both.
func TestPageFormatV2PublicRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	els := randomElements(r, 3000)
	orig := append([]Element(nil), els...)
	path := filepath.Join(t.TempDir(), "v2.flat")
	queries := queryWorkload(r, 15)

	ix, err := Build(els, &Options{Path: path, PageFormat: PageFormatV2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.PageFormat() != PageFormatV2 {
		t.Fatalf("built format %v", ix.PageFormat())
	}
	type base struct {
		ids   []uint64
		reads uint64
	}
	want := make([]base, len(queries))
	for i, q := range queries {
		if err := ix.DropCache(); err != nil {
			t.Fatal(err)
		}
		got, st, err := ix.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = base{ids: idsOf(got), reads: st.TotalReads}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	for _, mmap := range []bool{false, true} {
		re, err := OpenWithOptions(path, &Options{Mmap: mmap})
		if err != nil {
			t.Fatal(err)
		}
		if re.PageFormat() != PageFormatV2 {
			t.Fatalf("mmap=%v: reopened format %v", mmap, re.PageFormat())
		}
		for i, q := range queries {
			if err := re.DropCache(); err != nil {
				t.Fatal(err)
			}
			got, st, err := re.RangeQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(idsOf(got), want[i].ids) {
				t.Fatalf("mmap=%v query %d: results differ from build", mmap, i)
			}
			if st.TotalReads != want[i].reads {
				t.Errorf("mmap=%v query %d: cold reads %d, want %d", mmap, i, st.TotalReads, want[i].reads)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Brute-force ground truth, independent of any index.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i, q := range queries {
		var ids []uint64
		for _, e := range orig {
			if e.Box.Intersects(q) {
				ids = append(ids, e.ID)
			}
		}
		if !sameIDs(want[i].ids, idsOf(elementsIntersecting(orig, q))) {
			t.Fatalf("query %d: v2 results diverge from brute force (%d)", i, len(ids))
		}
	}
}

func elementsIntersecting(els []Element, q MBR) []Element {
	var out []Element
	for _, e := range els {
		if e.Box.Intersects(q) {
			out = append(out, e)
		}
	}
	return out
}

// TestShardedMmapOpen opens a v2 sharded index through the mmap path
// and exercises the full maintenance cycle on it: query, stage, rebuild
// (which swaps mmap-backed generations for file-backed ones), query
// again.
func TestShardedMmapOpen(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	els := randomElements(r, 2500)
	orig := append([]Element(nil), els...)
	dir := filepath.Join(t.TempDir(), "sharded-v2")
	queries := queryWorkload(r, 10)

	sx, err := BuildSharded(els, &ShardedOptions{Shards: 3, Dir: dir, PageFormat: PageFormatV2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenShardedWithOptions(dir, &ShardedOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for s := 0; s < re.NumShards(); s++ {
		if f := re.ShardPageFormat(s); f != PageFormatV2 {
			t.Fatalf("shard %d format %v", s, f)
		}
	}
	for i, q := range queries {
		got, _, err := re.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), idsOf(elementsIntersecting(orig, q))) {
			t.Fatalf("query %d wrong over mmap", i)
		}
	}

	ins := Element{ID: 70001, Box: CubeAt(V(50, 50, 50), 1)}
	if err := re.StageInsert(ins); err != nil {
		t.Fatal(err)
	}
	if err := re.StageDelete(orig[0].ID, orig[0].Box); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Rebuild(); err != nil {
		t.Fatal(err)
	}
	want := append(append([]Element(nil), orig[1:]...), ins)
	for i, q := range queries {
		got, _, err := re.RangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(idsOf(got), idsOf(elementsIntersecting(want, q))) {
			t.Fatalf("query %d wrong after rebuild over mmap", i)
		}
	}
}
