// Package flat is a Go implementation of FLAT, the two-phase spatial
// index for dense three-dimensional data sets introduced in
// "Accelerating Range Queries for Brain Simulations" (Tauheed, Biveinis,
// Heinis, Schürmann, Markram, Ailamaki — ICDE 2012).
//
// FLAT targets range queries on dense, mostly-static spatial models —
// brain-tissue circuits, surface meshes, n-body snapshots — where
// classic R-trees degrade because bounding-box overlap grows with data
// density. FLAT executes a range query in two phases:
//
//   - Seed: a small R-tree (the seed index) is walked along a single
//     pruned path to find one disk page holding an element inside the
//     query range. Cost: the height of the tree, regardless of density.
//   - Crawl: a breadth-first search follows precomputed neighborhood
//     pointers between pages, reading only pages whose bounds intersect
//     the query. Cost: proportional to the result size.
//
// # Quick start
//
//	els := []flat.Element{
//		{ID: 1, Box: flat.Box(flat.V(0, 0, 0), flat.V(1, 1, 1))},
//		{ID: 2, Box: flat.Box(flat.V(2, 2, 2), flat.V(3, 3, 3))},
//	}
//	ix, err := flat.Build(els, nil)
//	if err != nil { ... }
//	hits, stats, err := ix.RangeQuery(flat.Box(flat.V(0, 0, 0), flat.V(2.5, 2.5, 2.5)))
//
// The index is bulkloaded: like the system in the paper, it does not
// support in-place updates — rebuild when the data set changes
// (Section IV: models change rarely and in batches, making reindexing
// cheaper than maintaining update machinery). The sharded index
// shrinks the rebuild unit: ShardedIndex.StageInsert/StageDelete stage
// a batch of changes (visible to queries immediately) and Rebuild
// re-bulkloads only the shards the batch touches.
//
// Page reads are the library's cost model, mirroring the paper's
// evaluation: every query reports how many 4 KiB pages it touched, split
// into seed-tree, metadata and object pages (QueryStats).
//
// # Query sessions
//
// Query is the primary entry point: it starts a cancellable, streaming
// query session. The returned Results is iterated with a range loop and
// delivers elements incrementally as the crawl discovers them, so a
// caller pays page reads only for the results it actually consumes —
// breaking out of the loop, hitting a WithLimit bound, or cancelling
// the context stops the crawl immediately and the remaining pages are
// never read (the crawl's cost is proportional to the result size, so
// bounding the results bounds the I/O):
//
//	res := ix.Query(ctx, box, flat.WithLimit(100))
//	for el, err := range res.All() {
//		if err != nil { ... }
//		use(el)
//	}
//	cost := res.Stats() // page reads of the work actually performed
//
// RangeQuery, CountQuery, PointQuery and the Batch variants are
// compatibility wrappers over the same path for callers that want the
// whole result at once; the *Context variants accept a context without
// switching to sessions. OpenAny opens either index shape from a path
// and returns the composed QueryIndex interface; the Querier /
// Inspector / Maintainer role interfaces split the same surface by
// concern for callers that need less.
//
// # Concurrency
//
// A built (or reopened) Index is immutable, and its query paths —
// sessions, RangeQuery, CountQuery, PointQuery and the Batch variants —
// are safe to call from any number of goroutines at once. Queries share
// one lock-striped page cache; each query's QueryStats counts exactly
// the cache misses that query caused (a page another query just fetched
// is a free hit, as with a shared OS page cache). DropCache and Close
// are maintenance operations: calling them while queries are in flight
// (including sessions currently being drained) returns ErrBusy instead
// of racing, and every query and maintenance method returns ErrClosed
// after a successful Close. BatchRangeQuery is the convenience entry
// point for fanning a query batch over a worker pool.
//
// # Lifecycle of plain accessors
//
// The no-error accessors (Len, Bounds, World, NumPartitions, SizeBytes,
// SeedHeight, NumShards, ShardBounds, ShardGeneration, ...) read
// in-memory state that outlives the page files: they keep returning
// correct values after Close, and they serialize internally against
// maintenance (in particular ShardedIndex.Rebuild, which swaps the
// state they read), so calling them concurrently with anything is safe.
// They are the Inspector role; only methods that touch pages or mutate
// state report ErrClosed/ErrBusy.
//
// # Scaling out: sharding
//
// One Index is one bulkload pass over one page file. BuildSharded
// splits the data into K spatial shards along the Hilbert curve, builds
// K independent FLAT indexes in parallel, and serves them behind a
// top-level MBR directory: queries are pruned against the directory and
// scatter-gathered over the surviving shards, with merged QueryStats.
// All shards share one globally budgeted page cache. Index and
// ShardedIndex both satisfy Querier, so serving code is written once
// against the interface. See the README for guidance on choosing K.
package flat

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"flat/internal/core"
	"flat/internal/geom"
	"flat/internal/storage"
)

// Re-exported geometry types. MBR coordinates are float64, as in the
// paper's methodology.
type (
	// Vec3 is a point in 3D space.
	Vec3 = geom.Vec3
	// MBR is an axis-aligned minimum bounding rectangle.
	MBR = geom.MBR
	// Element is one indexed spatial element: an opaque 64-bit key plus
	// the element's MBR.
	Element = geom.Element
	// Cylinder is a neuron-morphology segment (two end points, two radii).
	Cylinder = geom.Cylinder
	// Triangle is a surface-mesh triangle.
	Triangle = geom.Triangle
	// QueryStats reports the cost of one range query in disk page reads.
	QueryStats = core.QueryStats
	// RecordRef addresses one metadata record on disk (page + slot); the
	// crawl phase follows these between neighboring partitions.
	RecordRef = core.RecordRef
	// PageID identifies a 4 KiB page within the index's storage.
	PageID = storage.PageID
)

// Querier is the query contract shared by the unsharded Index and the
// ShardedIndex: callers that only read — examples, benchmarks, serving
// code — program against it and work with either. It is the query role
// of the old 12-method interface; inspection and maintenance live in
// Inspector and Maintainer, and QueryIndex composes all three.
//
// All methods are safe for concurrent use.
type Querier interface {
	// Query starts a cancellable, streaming query session; see
	// Index.Query for the semantics shared by both implementations.
	Query(ctx context.Context, q MBR, opts ...QueryOption) *Results
	// NN starts a streaming k-nearest-neighbor session: the k indexed
	// elements nearest to p, delivered in nondecreasing distance; see
	// Index.NN for the semantics shared by both implementations.
	NN(ctx context.Context, p Vec3, k int, opts ...QueryOption) *Results
	// RangeQuery returns every indexed element intersecting q.
	RangeQuery(q MBR) ([]Element, QueryStats, error)
	// CountQuery counts elements intersecting q without materializing.
	CountQuery(q MBR) (int, QueryStats, error)
	// PointQuery returns the elements whose MBR contains p.
	PointQuery(p Vec3) ([]Element, QueryStats, error)
	// BatchRangeQuery fans queries over a worker pool.
	BatchRangeQuery(queries []MBR, workers int) ([]BatchResult, error)
	// BatchCountQuery is BatchRangeQuery without materializing results.
	BatchCountQuery(queries []MBR, workers int) ([]int, []QueryStats, error)
}

// Inspector is the read-only metadata role: cheap accessors over
// immutable in-memory state. They remain valid after Close — see the
// "Lifecycle of plain accessors" note in the package documentation.
type Inspector interface {
	// Len returns the number of indexed elements.
	Len() int
	// NumPartitions returns the number of partitions (object pages).
	NumPartitions() int
	// Bounds returns the bounding box of the indexed data.
	Bounds() MBR
	// World returns the partitioned space.
	World() MBR
	// SizeBytes returns the on-disk footprint of the index.
	SizeBytes() uint64
}

// Maintainer is the maintenance role. Both methods return ErrBusy while
// queries are in flight and ErrClosed after a successful Close.
type Maintainer interface {
	// DropCache empties the page cache (cold-start simulation).
	DropCache() error
	// Close releases the index's storage.
	Close() error
}

// QueryIndex is the composed contract most callers want — an opened
// index they can query, inspect and eventually close. OpenAny returns
// it; Index and ShardedIndex both satisfy it.
type QueryIndex interface {
	Querier
	Inspector
	Maintainer
}

var (
	_ QueryIndex = (*Index)(nil)
	_ QueryIndex = (*ShardedIndex)(nil)
)

// OpenAny opens a previously built index of either shape from path: a
// page file (flat.Build with Options.Path, reopened as *Index) or a
// shard directory holding a manifest (flat.BuildSharded with
// ShardedOptions.Dir, reopened as *ShardedIndex). Serving code calls
// one constructor and programs against QueryIndex; the concrete type
// is recoverable with a type switch when shape-specific accessors
// (SeedHeight, NumShards, staging) are needed.
func OpenAny(path string) (QueryIndex, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		return OpenSharded(path)
	}
	return Open(path)
}

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return geom.V(x, y, z) }

// Box constructs an MBR from two opposite corners in any order.
func Box(a, b Vec3) MBR { return geom.Box(a, b) }

// CubeAt returns the axis-aligned cube centered at c with the given side.
func CubeAt(c Vec3, side float64) MBR { return geom.CubeAt(c, side) }

// PageSize is the disk page size used throughout the library (4 KiB).
const PageSize = storage.PageSize

// PageFormat selects the on-disk object-page layout; see the Options
// field and the README's "On-disk format" section.
type PageFormat = storage.PageFormat

const (
	// PageFormatV1 is the original full-precision layout: 73 elements
	// per 4 KiB page, each a 48-byte float64 MBR plus a 64-bit id. Boxes
	// are stored bit-exactly.
	PageFormatV1 = storage.PageFormatV1
	// PageFormatV2 is the compressed layout: one full-precision
	// reference MBR per page plus 32-byte elements whose boxes are
	// quantized 32-bit offsets into it — 126 elements per page (1.7×
	// v1). Quantization is conservative: a stored box always contains
	// the inserted one, with at most ~4/2³² of the page extent of slack
	// per side, so queries never miss an element; extremely tight
	// queries can return a near-miss whose stored box grazes them.
	PageFormatV2 = storage.PageFormatV2
)

// ObjectPageCapacity reports how many elements one 4 KiB object page
// holds under the given format: 73 for PageFormatV1, 126 for
// PageFormatV2.
func ObjectPageCapacity(f PageFormat) int { return storage.ObjectPageCapacity(f) }

// Options configures Build. The zero value (or nil) gives a memory-backed
// index with full 4 KiB object pages partitioned over the data's bounds.
type Options struct {
	// World is the space that is partitioned into cells. It must contain
	// the data; leave zero to use the data's bounding box. Supply the
	// true model volume when the data does not fill its extremes (e.g. a
	// tissue volume with margins) so that crawl connectivity spans it.
	World MBR
	// PageCapacity caps elements per object page (default: a full page,
	// 73 elements).
	PageCapacity int
	// SeedFanout caps the entries per seed-tree internal node (default:
	// a full page). Smaller fanouts deepen the seed tree; the paper's
	// scaled-down experiments shrink it together with PageCapacity.
	SeedFanout int
	// Path, when non-empty, stores the index in a page file on disk at
	// the given path instead of in memory.
	Path string
	// BufferPages bounds the page cache (<= 0: unbounded). The cache is
	// what makes repeated page touches within one query free; call
	// Index.DropCache to simulate a cold start.
	BufferPages int
	// PageFormat selects the object-page layout (zero: PageFormatV1).
	// PageFormatV2 packs 1.7× the elements per page — proportionally
	// fewer pages read per query — at the cost of conservatively rounded
	// element boxes; see the PageFormat constants. The format is recorded
	// in the index file, so it is a build-time knob only: Open never
	// needs it.
	PageFormat PageFormat
	// Mmap, consulted only by OpenWithOptions, memory-maps the page file
	// read-only instead of reading it through a file descriptor: cache
	// misses alias pages straight out of the mapping, copying nothing.
	// Page-read accounting is unchanged (the cost model counts cache
	// misses, not syscalls). Ignored by Build, which needs a writable
	// pager.
	Mmap bool
}

// Index is a built FLAT index. See the package documentation for its
// concurrency guarantees.
type Index struct {
	inner *core.Index
	pool  *storage.ConcurrentPool
	pager storage.Pager
	guard queryGuard
}

// Build bulkloads a FLAT index over els (reordering the slice in place).
// See Options for storage and partitioning knobs.
func Build(els []Element, opts *Options) (*Index, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	var pager storage.Pager
	if o.Path != "" {
		fp, err := storage.CreateFilePager(o.Path)
		if err != nil {
			return nil, err
		}
		pager = fp
	} else {
		pager = storage.NewMemPager()
	}
	// A failed disk build must not leak a partial page file at Path.
	fail := func(err error) (*Index, error) {
		pager.Close()
		if o.Path != "" {
			os.Remove(o.Path)
		}
		return nil, err
	}
	pool := storage.NewConcurrentPool(pager, o.BufferPages)
	inner, err := core.Build(pool, els, core.Options{
		PageCapacity: o.PageCapacity,
		SeedFanout:   o.SeedFanout,
		PageFormat:   o.PageFormat,
		World:        o.World,
	})
	if err != nil {
		return fail(err)
	}
	if o.Path != "" {
		// Persist the superblock so the index can be reopened with Open.
		if err := inner.WriteSuper(); err != nil {
			return fail(err)
		}
	}
	// Hand back a cold index: construction leaves every page cached,
	// which would make the first queries' read counts meaningless.
	pool.Reset()
	return &Index{inner: inner, pool: pool, pager: pager}, nil
}

// Open loads a previously built disk-backed index from its page file
// with an unbounded page cache. It is shorthand for
// OpenWithOptions(path, nil).
func Open(path string) (*Index, error) {
	return OpenWithOptions(path, nil)
}

// OpenWithOptions loads a previously built disk-backed index from its
// page file. Only Options.BufferPages and Options.Mmap are consulted:
// BufferPages bounds the page cache the same way it does for Build, and
// Mmap serves pages out of a read-only memory mapping (Path and the
// build-only knobs are ignored — in particular the page format, which
// is read back from the index file itself). Queries on the reopened
// index behave identically to the freshly built one; the build-time
// analysis accessors (AvgNeighbors) return zero, as they are
// measurement aids not stored in the index.
func OpenWithOptions(path string, opts *Options) (*Index, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	var pager storage.Pager
	var err error
	if o.Mmap {
		pager, err = storage.OpenMmapPager(path)
	} else {
		pager, err = storage.OpenFilePager(path)
	}
	if err != nil {
		return nil, err
	}
	pool := storage.NewConcurrentPool(pager, o.BufferPages)
	inner, err := core.Open(pool)
	if err != nil {
		pager.Close()
		return nil, err
	}
	return &Index{inner: inner, pool: pool, pager: pager}, nil
}

// Query starts a streaming query session over q: a cancellable
// iterator that delivers elements incrementally, in the same
// deterministic order RangeQuery returns them. Nothing is read until
// the session is iterated (see Results). Between page reads the crawl
// checks ctx, so a deadline or cancellation aborts it mid-BFS with
// ctx.Err(); WithLimit stops it after k results, skipping the page
// reads the rest of the crawl would have cost; WithBuffer overlaps the
// crawl's page reads with the caller's per-element work
// (WithShardPrefetch only applies to sharded sessions and is a no-op
// here). Safe for concurrent use: any number of sessions may be
// drained at once.
func (ix *Index) Query(ctx context.Context, q MBR, opts ...QueryOption) *Results {
	return newResults(ctx, q, opts, &ix.guard, func(ctx context.Context, q MBR, _ queryConfig, emit func(Element) bool) (QueryStats, error) {
		return ix.inner.Query(ctx, q, emit)
	})
}

// RangeQuery returns every indexed element whose MBR intersects q,
// together with the query's page-read statistics. It is safe for
// concurrent use, and is a thin wrapper over the Query session path —
// Query(context.Background(), q).Collect() — kept for callers that want
// the whole result as a slice.
func (ix *Index) RangeQuery(q MBR) ([]Element, QueryStats, error) {
	return ix.Query(context.Background(), q).Collect()
}

// CountQuery returns the number of elements intersecting q without
// materializing them; the page access pattern is identical to
// RangeQuery. It is safe for concurrent use.
func (ix *Index) CountQuery(q MBR) (int, QueryStats, error) {
	return ix.Query(context.Background(), q).count()
}

// PointQuery returns the elements whose MBR contains p. It is safe for
// concurrent use.
func (ix *Index) PointQuery(p Vec3) ([]Element, QueryStats, error) {
	return ix.RangeQuery(geom.PointBox(p))
}

// CrawlFrom executes only the crawl phase of a range query, starting
// from an explicit metadata record instead of seeding. The paper claims
// the choice of start page affects neither accuracy nor efficiency of
// the search; this entry point exists so that claim stays testable
// against the public index (see Records for enumerating start refs).
func (ix *Index) CrawlFrom(q MBR, start RecordRef) ([]Element, error) {
	if err := ix.guard.enter(); err != nil {
		return nil, err
	}
	defer ix.guard.exit()
	return ix.inner.CrawlFrom(q, start)
}

// Records enumerates every metadata record in the index in on-disk
// order: its ref (a valid CrawlFrom start), the page and partition MBRs,
// the object page it describes and the full neighbor list (overflow
// chains already spliced). Enumeration stops at the first error fn
// returns, which is then returned.
func (ix *Index) Records(fn func(ref RecordRef, pageMBR, partitionMBR MBR, objectPage PageID, neighbors []RecordRef) error) error {
	if err := ix.guard.enter(); err != nil {
		return err
	}
	defer ix.guard.exit()
	return ix.inner.Records(fn)
}

// BatchResult is one query's output within a BatchRangeQuery.
type BatchResult struct {
	Elements []Element
	Stats    QueryStats
}

// BatchRangeQuery executes the queries concurrently on a pool of workers
// goroutines and returns per-query results in input order. A workers
// value <= 0 uses GOMAXPROCS. All workers share the index's page cache;
// each result's Stats counts the cache misses its own query caused, so
// summing them gives the batch's aggregate page reads. A query error
// aborts the batch; the error of the lowest-indexed failing query is
// returned (already-finished results are kept). It is shorthand for
// BatchRangeQueryContext with context.Background().
func (ix *Index) BatchRangeQuery(queries []MBR, workers int) ([]BatchResult, error) {
	return ix.BatchRangeQueryContext(context.Background(), queries, workers)
}

// BatchRangeQueryContext is BatchRangeQuery under a context: a done ctx
// stops workers from starting further queries and aborts the in-flight
// crawls, and the batch returns ctx.Err() (results finished before the
// cancellation are kept).
func (ix *Index) BatchRangeQueryContext(ctx context.Context, queries []MBR, workers int) ([]BatchResult, error) {
	if err := ix.guard.enter(); err != nil {
		return nil, err
	}
	defer ix.guard.exit()
	out := make([]BatchResult, len(queries))
	err := runBatch(ctx, len(queries), workers, func(i int) error {
		els, st, err := ix.inner.RangeQueryContext(ctx, queries[i])
		out[i] = BatchResult{Elements: els, Stats: st}
		return err
	})
	return out, err
}

// BatchCountQuery is BatchRangeQuery without materializing result
// elements: it returns each query's hit count and stats in input order.
func (ix *Index) BatchCountQuery(queries []MBR, workers int) ([]int, []QueryStats, error) {
	return ix.BatchCountQueryContext(context.Background(), queries, workers)
}

// BatchCountQueryContext is BatchCountQuery under a context, with the
// same cancellation semantics as BatchRangeQueryContext.
func (ix *Index) BatchCountQueryContext(ctx context.Context, queries []MBR, workers int) ([]int, []QueryStats, error) {
	if err := ix.guard.enter(); err != nil {
		return nil, nil, err
	}
	defer ix.guard.exit()
	counts := make([]int, len(queries))
	stats := make([]QueryStats, len(queries))
	err := runBatch(ctx, len(queries), workers, func(i int) error {
		n, st, err := ix.inner.CountQueryContext(ctx, queries[i])
		counts[i], stats[i] = n, st
		return err
	})
	return counts, stats, err
}

// runBatch fans n independent work items over a worker pool; it is the
// shared batch engine behind the Batch* methods of both Index and
// ShardedIndex. Workers pull the next item from an atomic cursor, so an
// expensive query does not stall the rest of the batch behind a static
// partition.
//
// Error propagation is deterministic: every claimed item runs to
// completion, failures are stamped with their item index, and the error
// of the lowest-indexed failure is returned. (The cursor hands indexes
// out in order, so when item i fails every item below i has already
// been claimed and will report its own failure if it has one — which
// one wins never depends on goroutine scheduling.) A done ctx stops
// workers from claiming further items; if nothing else failed first the
// batch returns ctx.Err().
func runBatch(ctx context.Context, n, workers int, run func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctx.Err()
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		failed atomic.Bool

		mu       sync.Mutex
		firstIdx = -1
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				select {
				case <-done:
					return
				default:
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// The plain accessors below read immutable in-memory state through the
// guard's view side: they stay valid after Close (an Index never
// mutates, so there is no closed state to observe), but serialize
// against maintenance so a concurrent DropCache/Close never interleaves
// with them. See the "Lifecycle of plain accessors" package note.

// Len returns the number of indexed elements.
func (ix *Index) Len() int { defer ix.guard.view()(); return ix.inner.Len() }

// NumPartitions returns the number of partitions (object pages).
func (ix *Index) NumPartitions() int { defer ix.guard.view()(); return ix.inner.NumPartitions() }

// SeedHeight returns the seed tree height in levels (metadata level
// inclusive); the seed phase of a query reads at most this many internal
// pages.
func (ix *Index) SeedHeight() int { defer ix.guard.view()(); return ix.inner.SeedHeight() }

// SizeBytes returns the on-disk footprint of the index.
func (ix *Index) SizeBytes() uint64 { defer ix.guard.view()(); return ix.inner.SizeBytes() }

// PageFormat returns the object-page layout the index was built with.
func (ix *Index) PageFormat() PageFormat { defer ix.guard.view()(); return ix.inner.PageFormat() }

// Bounds returns the bounding box of the indexed data.
func (ix *Index) Bounds() MBR { defer ix.guard.view()(); return ix.inner.Bounds() }

// World returns the partitioned space.
func (ix *Index) World() MBR { defer ix.guard.view()(); return ix.inner.World() }

// AvgNeighbors returns the mean number of neighborhood pointers per
// partition.
func (ix *Index) AvgNeighbors() float64 { defer ix.guard.view()(); return ix.inner.AvgNeighbors() }

// CacheStats reports the page cache's occupancy: how many frames it
// currently holds and its configured budget (capacity <= 0: unbounded).
// A serving layer exposes this so operators can see how much of the
// budget live traffic actually uses.
func (ix *Index) CacheStats() (cached, capacity int) {
	defer ix.guard.view()()
	return ix.pool.Len(), ix.pool.Capacity()
}

// DropCache empties the page cache so the next query starts cold — the
// equivalent of the paper's clearing of OS caches between measurements.
// It is a maintenance operation: when queries are in flight it returns
// ErrBusy and leaves the cache untouched (a concurrent query would
// otherwise see a partially dropped cache and report inflated read
// counts), and after Close it returns ErrClosed.
func (ix *Index) DropCache() error {
	if err := ix.guard.maintain(); err != nil {
		return err
	}
	defer ix.guard.release()
	ix.pool.DropFrames()
	return nil
}

// String summarizes the index.
func (ix *Index) String() string {
	obj, meta, seed := ix.inner.PageCounts()
	return fmt.Sprintf("flat.Index{elements: %d, partitions: %d, pages: %d object + %d metadata + %d seed, %.1f MiB}",
		ix.Len(), ix.NumPartitions(), obj, meta, seed, float64(ix.SizeBytes())/(1<<20))
}

// Close releases the index's storage (closing the page file when the
// index is disk-backed). When queries are in flight it returns ErrBusy
// and closes nothing; retry once they drain. After a successful Close
// every method returns ErrClosed.
func (ix *Index) Close() error {
	if err := ix.guard.shutdown(); err != nil {
		return err
	}
	return ix.pager.Close()
}
