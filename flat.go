// Package flat is a Go implementation of FLAT, the two-phase spatial
// index for dense three-dimensional data sets introduced in
// "Accelerating Range Queries for Brain Simulations" (Tauheed, Biveinis,
// Heinis, Schürmann, Markram, Ailamaki — ICDE 2012).
//
// FLAT targets range queries on dense, mostly-static spatial models —
// brain-tissue circuits, surface meshes, n-body snapshots — where
// classic R-trees degrade because bounding-box overlap grows with data
// density. FLAT executes a range query in two phases:
//
//   - Seed: a small R-tree (the seed index) is walked along a single
//     pruned path to find one disk page holding an element inside the
//     query range. Cost: the height of the tree, regardless of density.
//   - Crawl: a breadth-first search follows precomputed neighborhood
//     pointers between pages, reading only pages whose bounds intersect
//     the query. Cost: proportional to the result size.
//
// # Quick start
//
//	els := []flat.Element{
//		{ID: 1, Box: flat.Box(flat.V(0, 0, 0), flat.V(1, 1, 1))},
//		{ID: 2, Box: flat.Box(flat.V(2, 2, 2), flat.V(3, 3, 3))},
//	}
//	ix, err := flat.Build(els, nil)
//	if err != nil { ... }
//	hits, stats, err := ix.RangeQuery(flat.Box(flat.V(0, 0, 0), flat.V(2.5, 2.5, 2.5)))
//
// The index is bulkloaded: like the system in the paper, it does not
// support incremental updates — rebuild when the data set changes
// (Section IV: models change rarely and in batches, making reindexing
// cheaper than maintaining update machinery).
//
// Page reads are the library's cost model, mirroring the paper's
// evaluation: every query reports how many 4 KiB pages it touched, split
// into seed-tree, metadata and object pages (QueryStats).
package flat

import (
	"fmt"

	"flat/internal/core"
	"flat/internal/geom"
	"flat/internal/storage"
)

// Re-exported geometry types. MBR coordinates are float64, as in the
// paper's methodology.
type (
	// Vec3 is a point in 3D space.
	Vec3 = geom.Vec3
	// MBR is an axis-aligned minimum bounding rectangle.
	MBR = geom.MBR
	// Element is one indexed spatial element: an opaque 64-bit key plus
	// the element's MBR.
	Element = geom.Element
	// Cylinder is a neuron-morphology segment (two end points, two radii).
	Cylinder = geom.Cylinder
	// Triangle is a surface-mesh triangle.
	Triangle = geom.Triangle
	// QueryStats reports the cost of one range query in disk page reads.
	QueryStats = core.QueryStats
)

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return geom.V(x, y, z) }

// Box constructs an MBR from two opposite corners in any order.
func Box(a, b Vec3) MBR { return geom.Box(a, b) }

// CubeAt returns the axis-aligned cube centered at c with the given side.
func CubeAt(c Vec3, side float64) MBR { return geom.CubeAt(c, side) }

// PageSize is the disk page size used throughout the library (4 KiB).
const PageSize = storage.PageSize

// Options configures Build. The zero value (or nil) gives a memory-backed
// index with full 4 KiB object pages partitioned over the data's bounds.
type Options struct {
	// World is the space that is partitioned into cells. It must contain
	// the data; leave zero to use the data's bounding box. Supply the
	// true model volume when the data does not fill its extremes (e.g. a
	// tissue volume with margins) so that crawl connectivity spans it.
	World MBR
	// PageCapacity caps elements per object page (default: a full page,
	// 73 elements).
	PageCapacity int
	// Path, when non-empty, stores the index in a page file on disk at
	// the given path instead of in memory.
	Path string
	// BufferPages bounds the page cache (<= 0: unbounded). The cache is
	// what makes repeated page touches within one query free; call
	// Index.DropCache to simulate a cold start.
	BufferPages int
}

// Index is a built FLAT index.
type Index struct {
	inner *core.Index
	pool  *storage.BufferPool
	pager storage.Pager
}

// Build bulkloads a FLAT index over els (reordering the slice in place).
// See Options for storage and partitioning knobs.
func Build(els []Element, opts *Options) (*Index, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	var pager storage.Pager
	if o.Path != "" {
		fp, err := storage.CreateFilePager(o.Path)
		if err != nil {
			return nil, err
		}
		pager = fp
	} else {
		pager = storage.NewMemPager()
	}
	pool := storage.NewBufferPool(pager, o.BufferPages)
	inner, err := core.Build(pool, els, core.Options{
		PageCapacity: o.PageCapacity,
		World:        o.World,
	})
	if err != nil {
		pager.Close()
		return nil, err
	}
	if o.Path != "" {
		// Persist the superblock so the index can be reopened with Open.
		if err := inner.WriteSuper(); err != nil {
			pager.Close()
			return nil, err
		}
	}
	// Hand back a cold index: construction leaves every page cached,
	// which would make the first queries' read counts meaningless.
	pool.Reset()
	return &Index{inner: inner, pool: pool, pager: pager}, nil
}

// Open loads a previously built disk-backed index from its page file.
// Queries on the reopened index behave identically to the freshly built
// one; the build-time analysis accessors (AvgNeighbors) return zero, as
// they are measurement aids not stored in the index.
func Open(path string) (*Index, error) {
	fp, err := storage.OpenFilePager(path)
	if err != nil {
		return nil, err
	}
	pool := storage.NewBufferPool(fp, 0)
	inner, err := core.Open(pool)
	if err != nil {
		fp.Close()
		return nil, err
	}
	return &Index{inner: inner, pool: pool, pager: fp}, nil
}

// RangeQuery returns every indexed element whose MBR intersects q,
// together with the query's page-read statistics.
func (ix *Index) RangeQuery(q MBR) ([]Element, QueryStats, error) {
	return ix.inner.RangeQuery(q)
}

// CountQuery returns the number of elements intersecting q without
// materializing them; the page access pattern is identical to RangeQuery.
func (ix *Index) CountQuery(q MBR) (int, QueryStats, error) {
	return ix.inner.CountQuery(q)
}

// PointQuery returns the elements whose MBR contains p.
func (ix *Index) PointQuery(p Vec3) ([]Element, QueryStats, error) {
	return ix.inner.RangeQuery(geom.PointBox(p))
}

// Len returns the number of indexed elements.
func (ix *Index) Len() int { return ix.inner.Len() }

// NumPartitions returns the number of partitions (object pages).
func (ix *Index) NumPartitions() int { return ix.inner.NumPartitions() }

// SeedHeight returns the seed tree height in levels (metadata level
// inclusive); the seed phase of a query reads at most this many internal
// pages.
func (ix *Index) SeedHeight() int { return ix.inner.SeedHeight() }

// SizeBytes returns the on-disk footprint of the index.
func (ix *Index) SizeBytes() uint64 { return ix.inner.SizeBytes() }

// Bounds returns the bounding box of the indexed data.
func (ix *Index) Bounds() MBR { return ix.inner.Bounds() }

// World returns the partitioned space.
func (ix *Index) World() MBR { return ix.inner.World() }

// AvgNeighbors returns the mean number of neighborhood pointers per
// partition.
func (ix *Index) AvgNeighbors() float64 { return ix.inner.AvgNeighbors() }

// DropCache empties the page cache so the next query starts cold — the
// equivalent of the paper's clearing of OS caches between measurements.
func (ix *Index) DropCache() { ix.pool.DropFrames() }

// String summarizes the index.
func (ix *Index) String() string {
	obj, meta, seed := ix.inner.PageCounts()
	return fmt.Sprintf("flat.Index{elements: %d, partitions: %d, pages: %d object + %d metadata + %d seed, %.1f MiB}",
		ix.Len(), ix.NumPartitions(), obj, meta, seed, float64(ix.SizeBytes())/(1<<20))
}

// Close releases the index's storage (closing the page file when the
// index is disk-backed). The index must not be used afterwards.
func (ix *Index) Close() error { return ix.pager.Close() }
